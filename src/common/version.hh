/**
 * @file
 * Binary version identification.
 *
 * kEveVersion names the code generation a binary was built from, as
 * opposed to kSimulatorSalt (exp/cache.hh), which names the *timing
 * semantics* generation. The two move independently: every release
 * bumps the version; only changes that shift simulated numbers bump
 * the salt. Both are stamped into `eve_sweep --status` output and
 * the sweep service's hello/metrics replies so that version or salt
 * skew across a fleet is diagnosable before a submission is refused.
 */

#ifndef EVE_COMMON_VERSION_HH
#define EVE_COMMON_VERSION_HH

namespace eve
{

/** Human-readable binary version; bump per release-worthy change. */
inline constexpr const char* kEveVersion = "eve-sim 0.6.0";

} // namespace eve

#endif // EVE_COMMON_VERSION_HH
