#include "common/fs.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hh"

namespace eve
{

namespace
{

std::string
dirOf(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

bool
fsyncPath(const std::string& path, bool directory, std::string* err)
{
    const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0) {
        // Some filesystems refuse O_DIRECTORY opens; a failed
        // directory fsync weakens durability, not atomicity.
        if (directory)
            return true;
        if (err)
            *err = path + ": open for fsync: " + std::strerror(errno);
        return false;
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0 && !directory) {
        if (err)
            *err = path + ": fsync: " + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace

bool
tryAtomicWriteFile(const std::string& path, const std::string& content,
                   std::string* err)
{
    const std::string tmp = path + "." +
                            std::to_string(::getpid()) + kTmpSuffix;
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (err)
            *err = tmp + ": open: " + std::strerror(errno);
        return false;
    }
    std::size_t off = 0;
    while (off < content.size()) {
        const ssize_t n =
            ::write(fd, content.data() + off, content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = tmp + ": write: " + std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        if (err)
            *err = tmp + ": fsync: " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        if (err)
            *err = tmp + ": close: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = path + ": rename: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return fsyncPath(dirOf(path), /*directory=*/true, err);
}

void
atomicWriteFile(const std::string& path, const std::string& content)
{
    std::string err;
    if (!tryAtomicWriteFile(path, content, &err))
        fatal("atomic write of '%s' failed: %s", path.c_str(),
              err.c_str());
}

bool
renameFile(const std::string& from, const std::string& to)
{
    if (::rename(from.c_str(), to.c_str()) == 0)
        return true;
    if (errno != ENOENT)
        warn("rename '%s' -> '%s': %s", from.c_str(), to.c_str(),
             std::strerror(errno));
    return false;
}

void
removeFile(const std::string& path)
{
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
        warn("remove '%s': %s", path.c_str(), std::strerror(errno));
}

bool
fileExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

bool
readFile(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    if (in.bad())
        return false;
    out = os.str();
    return true;
}

void
makeDirs(const std::string& dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cannot create directory '%s': %s", dir.c_str(),
              ec.message().c_str());
}

FileLock::FileLock(const std::string& path)
{
    fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
        warn("file lock '%s': open: %s (proceeding unlocked)",
             path.c_str(), std::strerror(errno));
        return;
    }
    while (::flock(fd, LOCK_EX) != 0) {
        if (errno == EINTR)
            continue;
        warn("file lock '%s': flock: %s (proceeding unlocked)",
             path.c_str(), std::strerror(errno));
        ::close(fd);
        fd = -1;
        return;
    }
}

FileLock::~FileLock()
{
    if (fd >= 0) {
        ::flock(fd, LOCK_UN);
        ::close(fd);
    }
}

} // namespace eve
