#include "common/json.hh"

#include <cstdlib>

namespace eve
{

const JsonValue*
JsonValue::find(const std::string& key) const
{
    for (const auto& [k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

class JsonParser
{
  public:
    /** @p text must outlive the parser (strtod needs the NUL). */
    explicit JsonParser(const std::string& text)
        : p(text.c_str()), end(text.c_str() + text.size())
    {
    }

    bool
    parse(JsonValue& out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return p == end;
    }

  private:
    const char* p;
    const char* end;

    void
    skipWs()
    {
        while (p != end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    literal(const char* s, std::size_t n)
    {
        if (std::size_t(end - p) < n)
            return false;
        for (std::size_t i = 0; i < n; ++i) {
            if (p[i] != s[i])
                return false;
        }
        p += n;
        return true;
    }

    bool
    parseValue(JsonValue& out)
    {
        if (p == end)
            return false;
        switch (*p) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.text);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null", 4);
          default:
            out.type = JsonValue::Type::Number;
            return parseNumber(out.number);
        }
    }

    bool
    parseNumber(double& out)
    {
        char* num_end = nullptr;
        out = std::strtod(p, &num_end);
        if (num_end == p || num_end > end)
            return false;
        p = num_end;
        return true;
    }

    bool
    parseString(std::string& out)
    {
        if (p == end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p != end && *p != '"') {
            if (*p != '\\') {
                out += *p++;
                continue;
            }
            if (++p == end)
                return false;
            switch (*p) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (end - p < 5)
                    return false;
                unsigned code = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char c = p[i];
                    code <<= 4;
                    if (c >= '0' && c <= '9')
                        code |= unsigned(c - '0');
                    else if (c >= 'a' && c <= 'f')
                        code |= unsigned(c - 'a' + 10);
                    else if (c >= 'A' && c <= 'F')
                        code |= unsigned(c - 'A' + 10);
                    else
                        return false;
                }
                // jsonEscape only emits \u00xx control characters;
                // encode anything else as UTF-8 for completeness.
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                p += 4;
                break;
              }
              default: return false;
            }
            ++p;
        }
        if (p == end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    parseObject(JsonValue& out)
    {
        out.type = JsonValue::Type::Object;
        ++p; // '{'
        skipWs();
        if (p != end && *p == '}') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (p == end || *p != ':')
                return false;
            ++p;
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (p == end)
                return false;
            if (*p == ',') {
                ++p;
                continue;
            }
            if (*p == '}') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(JsonValue& out)
    {
        out.type = JsonValue::Type::Array;
        ++p; // '['
        skipWs();
        if (p != end && *p == ']') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.elements.push_back(std::move(value));
            skipWs();
            if (p == end)
                return false;
            if (*p == ',') {
                ++p;
                continue;
            }
            if (*p == ']') {
                ++p;
                return true;
            }
            return false;
        }
    }
};

} // namespace

bool
parseJson(const std::string& text, JsonValue& out)
{
    // Reset: parseObject/parseArray append, so a reused JsonValue
    // would otherwise keep stale members shadowing the new ones.
    out = JsonValue();
    JsonParser parser(text);
    return parser.parse(out);
}

double
jsonNumberField(const JsonValue& obj, const char* key, double fallback)
{
    const JsonValue* v = obj.find(key);
    return v && v->type == JsonValue::Type::Number ? v->number
                                                   : fallback;
}

std::string
jsonStringField(const JsonValue& obj, const char* key,
                const std::string& fallback)
{
    const JsonValue* v = obj.find(key);
    return v && v->type == JsonValue::Type::String ? v->text
                                                   : fallback;
}

} // namespace eve
