/**
 * @file
 * Filesystem primitives for crash-safe artifact and protocol files.
 *
 * Everything durable the experiment stack writes goes through
 * atomicWriteFile(): the content lands in a same-directory temp file
 * (`<path>.<pid>.tmp`), is fsync'd, and is rename(2)'d over the
 * target, so a reader can never observe a torn or partial file — it
 * sees either the old bytes or the new bytes. The distributed sweep
 * protocol additionally leans on two POSIX guarantees:
 *
 *  - rename(2) within one filesystem is atomic, and when two
 *    processes race to rename the same source, exactly one succeeds
 *    (the loser gets ENOENT) — this is the job-claim primitive;
 *  - flock(2) gives advisory whole-file mutual exclusion across
 *    processes — this serializes multi-process appends to the
 *    result-cache journal.
 */

#ifndef EVE_COMMON_FS_HH
#define EVE_COMMON_FS_HH

#include <string>

namespace eve
{

/**
 * Write @p content to `<path>.<pid>.tmp` in the target's directory,
 * fsync it, and atomically rename it over @p path (fsyncing the
 * directory afterwards). Returns false with @p err set on any I/O
 * failure; the temp file is removed on failure when possible.
 */
bool tryAtomicWriteFile(const std::string& path,
                        const std::string& content, std::string* err);

/** tryAtomicWriteFile() or die (fatal) with the I/O error. */
void atomicWriteFile(const std::string& path,
                     const std::string& content);

/**
 * The temp-file suffix tryAtomicWriteFile() uses. A `*.tmp` file left
 * behind in a protocol directory is the signature of a writer that
 * died mid-write; the distributed sweep quarantines such leftovers.
 */
inline constexpr const char* kTmpSuffix = ".tmp";

/**
 * rename(2) @p from over @p to. Returns true if *this caller's*
 * rename succeeded. ENOENT (another process claimed/moved the source
 * first) is a quiet false; any other failure warns.
 */
bool renameFile(const std::string& from, const std::string& to);

/** Remove a file; missing files are fine. */
void removeFile(const std::string& path);

/** True if @p path exists (any file type). */
bool fileExists(const std::string& path);

/** Whole-file read; returns false on any error. */
bool readFile(const std::string& path, std::string& out);

/** mkdir -p; fatal on failure. */
void makeDirs(const std::string& dir);

/**
 * Advisory cross-process mutex over a lock file (flock(2), LOCK_EX).
 * Construction blocks until the lock is held; destruction releases
 * it. locked() is false only if the lock file could not be opened —
 * callers may then proceed unserialized (advisory semantics).
 */
class FileLock
{
  public:
    explicit FileLock(const std::string& path);
    ~FileLock();

    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;

    bool locked() const { return fd >= 0; }

  private:
    int fd = -1;
};

} // namespace eve

#endif // EVE_COMMON_FS_HH
