#include "common/stats.hh"

#include <sstream>

namespace eve
{

double
StatGroup::get(const std::string& stat) const
{
    auto it = values.find(stat);
    return it == values.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string& stat) const
{
    return values.find(stat) != values.end();
}

std::vector<std::pair<std::string, double>>
StatGroup::sorted() const
{
    return {values.begin(), values.end()};
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto& [stat, value] : values) {
        if (!groupName.empty())
            os << groupName << '.';
        os << stat << " = " << value << '\n';
    }
    return os.str();
}

} // namespace eve
