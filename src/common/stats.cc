#include "common/stats.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace eve
{

StatGroup::Id
StatGroup::id(const std::string& stat)
{
    auto it = index.find(stat);
    if (it != index.end())
        return it->second;
    const Id new_id = Id(entries.size());
    entries.push_back(Entry{stat, 0, false});
    index.emplace(stat, new_id);
    return new_id;
}

double
StatGroup::get(const std::string& stat) const
{
    auto it = index.find(stat);
    if (it == index.end())
        return 0.0;
    const Entry& e = entries[it->second];
    return e.touched ? e.value : 0.0;
}

void
StatGroup::merge(const StatGroup& other)
{
    for (const Entry& e : other.entries) {
        if (e.touched)
            add(id(e.name), e.value);
    }
}

bool
StatGroup::has(const std::string& stat) const
{
    auto it = index.find(stat);
    return it != index.end() && entries[it->second].touched;
}

void
StatGroup::clear()
{
    for (Entry& e : entries) {
        e.value = 0;
        e.touched = false;
    }
}

std::vector<std::pair<std::string, double>>
StatGroup::sorted() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries.size());
    // The index map is already name-sorted.
    for (const auto& [stat, stat_id] : index) {
        const Entry& e = entries[stat_id];
        if (e.touched)
            out.emplace_back(stat, e.value);
    }
    return out;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto& [stat, value] : sorted()) {
        if (!groupName.empty())
            os << groupName << '.';
        os << stat << " = " << value << '\n';
    }
    return os.str();
}

std::string
StatGroup::toJson() const
{
    std::map<std::string, double> values;
    for (const auto& [stat, value] : sorted())
        values.emplace(stat, value);
    return statsToJson(values);
}

std::string
jsonNumber(double value)
{
    // Counters are usually integral; print them without a fraction
    // so the output is stable and diff-friendly.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(value));
        return buf;
    }
    if (!std::isfinite(value))
        return "null"; // JSON has no NaN/Inf
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
statsToJson(const std::map<std::string, double>& values)
{
    std::string out = "{";
    bool first = true;
    for (const auto& [stat, value] : values) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(stat) + "\":" + jsonNumber(value);
    }
    out += "}";
    return out;
}

} // namespace eve
