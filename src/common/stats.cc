#include "common/stats.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace eve
{

double
StatGroup::get(const std::string& stat) const
{
    auto it = values.find(stat);
    return it == values.end() ? 0.0 : it->second;
}

void
StatGroup::merge(const StatGroup& other)
{
    for (const auto& [stat, value] : other.values)
        values[stat] += value;
}

bool
StatGroup::has(const std::string& stat) const
{
    return values.find(stat) != values.end();
}

std::vector<std::pair<std::string, double>>
StatGroup::sorted() const
{
    return {values.begin(), values.end()};
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto& [stat, value] : values) {
        if (!groupName.empty())
            os << groupName << '.';
        os << stat << " = " << value << '\n';
    }
    return os.str();
}

std::string
StatGroup::toJson() const
{
    return statsToJson(values);
}

std::string
jsonNumber(double value)
{
    // Counters are usually integral; print them without a fraction
    // so the output is stable and diff-friendly.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(value));
        return buf;
    }
    if (!std::isfinite(value))
        return "null"; // JSON has no NaN/Inf
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
statsToJson(const std::map<std::string, double>& values)
{
    std::string out = "{";
    bool first = true;
    for (const auto& [stat, value] : values) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(stat) + "\":" + jsonNumber(value);
    }
    out += "}";
    return out;
}

} // namespace eve
