/**
 * @file
 * Logging and error reporting in the gem5 idiom.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            this code base); aborts.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with 1.
 * warn()   — something is modelled approximately; simulation goes on.
 * inform() — status messages with no connotation of incorrectness.
 */

#ifndef EVE_COMMON_LOG_HH
#define EVE_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace eve
{

/** Abort with a formatted message; use for simulator bugs. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user errors. */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about approximate or suspicious behaviour. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** Format helper used by the logging functions; exposed for tests. */
std::string vformat(const char* fmt, va_list ap);

} // namespace eve

#endif // EVE_COMMON_LOG_HH
