/**
 * @file
 * A flat open-addressing Addr -> Tick table.
 *
 * Purpose-built for the cache's MSHR / in-flight-fill tracking: one
 * contiguous slot array, linear probing, backward-shift deletion (no
 * tombstones), multiplicative hashing. Compared to the
 * unordered_map it replaces there is no per-node allocation and no
 * pointer chasing on the per-access hot path; behaviourally it is
 * exactly a map, so simulated timing is unchanged.
 *
 * The all-ones key is reserved as the empty-slot sentinel. Keys here
 * are cache *line* numbers (byte address / line size), so the
 * sentinel is unreachable for any realistic address-space size.
 */

#ifndef EVE_COMMON_FLAT_MAP_HH
#define EVE_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"

namespace eve
{

/** Flat Addr -> Tick hash table (linear probing, backshift erase). */
class FlatAddrMap
{
  public:
    /** Reserve capacity for about @p expected live entries. */
    explicit FlatAddrMap(std::size_t expected = 16)
    {
        std::size_t cap = 16;
        while (cap < 2 * expected)
            cap *= 2;
        slots.assign(cap, Slot{kEmpty, 0});
        mask = cap - 1;
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    Tick*
    find(Addr key)
    {
        std::size_t i = bucket(key);
        while (slots[i].key != kEmpty) {
            if (slots[i].key == key)
                return &slots[i].value;
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    const Tick*
    find(Addr key) const
    {
        return const_cast<FlatAddrMap*>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /** Insert @p key or overwrite its existing value. */
    void
    insertOrAssign(Addr key, Tick value)
    {
        if (value < minVal)
            minVal = value;
        std::size_t i = bucket(key);
        while (slots[i].key != kEmpty) {
            if (slots[i].key == key) {
                slots[i].value = value;
                return;
            }
            i = (i + 1) & mask;
        }
        slots[i] = Slot{key, value};
        ++live;
        if (2 * live > slots.size())
            grow();
    }

    /** Remove @p key; returns whether it was present. */
    bool
    erase(Addr key)
    {
        std::size_t i = bucket(key);
        while (slots[i].key != kEmpty) {
            if (slots[i].key == key) {
                eraseSlot(i);
                return true;
            }
            i = (i + 1) & mask;
        }
        return false;
    }

    /** Drop every entry whose (key, value) satisfies @p pred. */
    template <typename Pred>
    void
    eraseIf(Pred pred)
    {
        // Rebuild: collect survivors, then reinsert. A scan-and-
        // backshift in a single pass would be wrong when a probe
        // chain wraps the array end (an entry can shift into an
        // already-visited slot), so keep the rebuild but reuse a
        // persistent scratch buffer — no allocation once warm.
        scratch.clear();
        scratch.reserve(live);
        for (const Slot& s : slots) {
            if (s.key != kEmpty && !pred(s.key, s.value))
                scratch.push_back(s);
        }
        std::fill(slots.begin(), slots.end(), Slot{kEmpty, 0});
        live = 0;
        minVal = kNoValue; // rebuild recomputes the exact minimum
        for (const Slot& s : scratch)
            insertOrAssign(s.key, s.value);
    }

    void
    clear()
    {
        std::fill(slots.begin(), slots.end(), Slot{kEmpty, 0});
        live = 0;
        minVal = kNoValue;
    }

    std::size_t size() const { return live; }

    /**
     * A lower bound on the smallest stored value (all-ones when
     * empty). Maintained on insert and recomputed exactly by
     * eraseIf(); erase() leaves it untouched, so it may lag low —
     * never high. Lets the cache skip a bounded-size prune outright
     * when no entry can match (bound > threshold implies true
     * minimum > threshold), which costs O(1) instead of a full
     * table rebuild and leaves the entry set untouched.
     */
    Tick minValueBound() const { return minVal; }

  private:
    struct Slot
    {
        Addr key;
        Tick value;
    };

    static constexpr Addr kEmpty = ~Addr{0};
    static constexpr Tick kNoValue = ~Tick{0};

    std::size_t
    bucket(Addr key) const
    {
        // Fibonacci multiplicative hash; low line-number bits alone
        // would cluster unit-stride streams into adjacent slots.
        return std::size_t((key * 0x9E3779B97F4A7C15ull) >> 32) & mask;
    }

    void
    eraseSlot(std::size_t i)
    {
        // Backward-shift deletion keeps probe chains intact without
        // tombstones: pull every displaced follower one slot back.
        --live;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (slots[j].key == kEmpty)
                break;
            const std::size_t home = bucket(slots[j].key);
            // Move slot j into the hole at i unless its home lies
            // cyclically inside (i, j] — then the chain still works.
            const bool keep = (j > i) ? (home > i && home <= j)
                                      : (home > i || home <= j);
            if (!keep) {
                slots[i] = slots[j];
                i = j;
            }
        }
        slots[i] = Slot{kEmpty, 0};
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(old.size() * 2, Slot{kEmpty, 0});
        mask = slots.size() - 1;
        live = 0;
        for (const Slot& s : old) {
            if (s.key != kEmpty)
                insertOrAssign(s.key, s.value);
        }
    }

    std::vector<Slot> slots;
    std::vector<Slot> scratch; ///< eraseIf survivor buffer, reused
    std::size_t mask = 0;
    std::size_t live = 0;
    Tick minVal = kNoValue; ///< lower bound; see minValueBound()
};

} // namespace eve

#endif // EVE_COMMON_FLAT_MAP_HH
