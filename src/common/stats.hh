/**
 * @file
 * A small statistics registry.
 *
 * Components own a StatGroup and register named scalar counters in it.
 * The registry supports hierarchical dumping (component.stat = value)
 * and is what the bench harnesses read to build the paper's tables.
 *
 * Counters live in a dense vector; the string name resolves to a
 * stable Id once (StatGroup::id), so hot paths that bump the same
 * counter millions of times per run pay one array index per update
 * instead of a string-keyed map lookup. The string overloads remain
 * for cold paths and tests. Output (sorted/dump/toJson) includes only
 * counters that have been touched since construction or clear(), so
 * pre-registering Ids in a constructor does not change what a
 * component reports — a requirement of the timing-parity guard.
 */

#ifndef EVE_COMMON_STATS_HH
#define EVE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eve
{

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    /** Stable handle of one counter within its group. */
    using Id = std::uint32_t;

    explicit StatGroup(std::string name = "") : groupName(std::move(name)) {}

    /**
     * Resolve @p stat to its Id, registering it (untouched, zero) on
     * first use. Ids stay valid for the group's lifetime — clear()
     * zeroes values but never invalidates handles.
     */
    Id id(const std::string& stat);

    /** Add @p delta to the counter (hot path: one array index). */
    void
    add(Id stat, double delta)
    {
        Entry& e = entries[stat];
        e.value += delta;
        e.touched = true;
    }

    /** Set the counter to @p value. */
    void
    set(Id stat, double value)
    {
        Entry& e = entries[stat];
        e.value = value;
        e.touched = true;
    }

    /** Add @p delta to the named counter (creating it at zero). */
    void
    add(const std::string& stat, double delta)
    {
        add(id(stat), delta);
    }

    /** Set the named counter to @p value. */
    void
    set(const std::string& stat, double value)
    {
        set(id(stat), value);
    }

    /** Read a counter; returns 0 for counters never touched. */
    double get(const std::string& stat) const;

    /** Accumulate every touched counter of @p other into this group. */
    void merge(const StatGroup& other);

    /** True iff the counter has been touched. */
    bool has(const std::string& stat) const;

    /** Reset every counter to zero (registered Ids stay valid). */
    void clear();

    /** Name given at construction. */
    const std::string& name() const { return groupName; }

    /** All touched (stat, value) pairs sorted by name. */
    std::vector<std::pair<std::string, double>> sorted() const;

    /** Render as "group.stat = value" lines. */
    std::string dump() const;

    /** Render as a JSON object, {"stat": value, ...}, sorted. */
    std::string toJson() const;

  private:
    struct Entry
    {
        std::string name;
        double value = 0;
        bool touched = false;
    };

    std::string groupName;
    std::vector<Entry> entries;
    std::map<std::string, Id> index;
};

/**
 * Render a stat map as a JSON object with deterministic number
 * formatting (integers print without a fraction). Shared by
 * StatGroup::toJson and the experiment result sinks.
 */
std::string statsToJson(const std::map<std::string, double>& values);

/** Deterministic JSON number rendering for a double. */
std::string jsonNumber(double value);

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string& s);

} // namespace eve

#endif // EVE_COMMON_STATS_HH
