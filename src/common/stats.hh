/**
 * @file
 * A small statistics registry.
 *
 * Components own a StatGroup and register named scalar counters in it.
 * The registry supports hierarchical dumping (component.stat = value)
 * and is what the bench harnesses read to build the paper's tables.
 */

#ifndef EVE_COMMON_STATS_HH
#define EVE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eve
{

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : groupName(std::move(name)) {}

    /** Add @p delta to the named counter (creating it at zero). */
    void
    add(const std::string& stat, double delta)
    {
        values[stat] += delta;
    }

    /** Set the named counter to @p value. */
    void
    set(const std::string& stat, double value)
    {
        values[stat] = value;
    }

    /** Read a counter; returns 0 for counters never touched. */
    double get(const std::string& stat) const;

    /** Accumulate every counter of @p other into this group. */
    void merge(const StatGroup& other);

    /** True iff the counter has been touched. */
    bool has(const std::string& stat) const;

    /** Reset every counter to zero. */
    void clear() { values.clear(); }

    /** Name given at construction. */
    const std::string& name() const { return groupName; }

    /** All (stat, value) pairs sorted by name. */
    std::vector<std::pair<std::string, double>> sorted() const;

    /** Render as "group.stat = value" lines. */
    std::string dump() const;

    /** Render as a JSON object, {"stat": value, ...}, sorted. */
    std::string toJson() const;

  private:
    std::string groupName;
    std::map<std::string, double> values;
};

/**
 * Render a stat map as a JSON object with deterministic number
 * formatting (integers print without a fraction). Shared by
 * StatGroup::toJson and the experiment result sinks.
 */
std::string statsToJson(const std::map<std::string, double>& values);

/** Deterministic JSON number rendering for a double. */
std::string jsonNumber(double value);

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string& s);

} // namespace eve

#endif // EVE_COMMON_STATS_HH
