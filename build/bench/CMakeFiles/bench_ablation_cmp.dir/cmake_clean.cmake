file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cmp.dir/bench_ablation_cmp.cc.o"
  "CMakeFiles/bench_ablation_cmp.dir/bench_ablation_cmp.cc.o.d"
  "bench_ablation_cmp"
  "bench_ablation_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
