# Empty compiler generated dependencies file for bench_ablation_cmp.
# This may be replaced when dependencies are built.
