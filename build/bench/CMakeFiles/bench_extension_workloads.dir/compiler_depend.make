# Empty compiler generated dependencies file for bench_extension_workloads.
# This may be replaced when dependencies are built.
