file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_workloads.dir/bench_extension_workloads.cc.o"
  "CMakeFiles/bench_extension_workloads.dir/bench_extension_workloads.cc.o.d"
  "bench_extension_workloads"
  "bench_extension_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
