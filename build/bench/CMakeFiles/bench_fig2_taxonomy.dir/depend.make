# Empty dependencies file for bench_fig2_taxonomy.
# This may be replaced when dependencies are built.
