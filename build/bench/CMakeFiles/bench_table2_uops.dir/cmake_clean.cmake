file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_uops.dir/bench_table2_uops.cc.o"
  "CMakeFiles/bench_table2_uops.dir/bench_table2_uops.cc.o.d"
  "bench_table2_uops"
  "bench_table2_uops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_uops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
