# Empty dependencies file for bench_table2_uops.
# This may be replaced when dependencies are built.
