file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dtu.dir/bench_ablation_dtu.cc.o"
  "CMakeFiles/bench_ablation_dtu.dir/bench_ablation_dtu.cc.o.d"
  "bench_ablation_dtu"
  "bench_ablation_dtu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dtu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
