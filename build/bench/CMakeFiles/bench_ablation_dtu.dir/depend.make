# Empty dependencies file for bench_ablation_dtu.
# This may be replaced when dependencies are built.
