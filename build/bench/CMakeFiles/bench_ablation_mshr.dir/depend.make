# Empty dependencies file for bench_ablation_mshr.
# This may be replaced when dependencies are built.
