# Empty compiler generated dependencies file for bench_area_efficiency.
# This may be replaced when dependencies are built.
