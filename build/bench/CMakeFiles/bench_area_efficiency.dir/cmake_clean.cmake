file(REMOVE_RECURSE
  "CMakeFiles/bench_area_efficiency.dir/bench_area_efficiency.cc.o"
  "CMakeFiles/bench_area_efficiency.dir/bench_area_efficiency.cc.o.d"
  "bench_area_efficiency"
  "bench_area_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
