file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_vmu_stalls.dir/bench_fig8_vmu_stalls.cc.o"
  "CMakeFiles/bench_fig8_vmu_stalls.dir/bench_fig8_vmu_stalls.cc.o.d"
  "bench_fig8_vmu_stalls"
  "bench_fig8_vmu_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vmu_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
