# Empty dependencies file for bench_fig8_vmu_stalls.
# This may be replaced when dependencies are built.
