# Empty dependencies file for bench_fig1_layout.
# This may be replaced when dependencies are built.
