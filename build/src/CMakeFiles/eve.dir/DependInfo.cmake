
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/circuits.cc" "src/CMakeFiles/eve.dir/analytic/circuits.cc.o" "gcc" "src/CMakeFiles/eve.dir/analytic/circuits.cc.o.d"
  "/root/repo/src/analytic/energy.cc" "src/CMakeFiles/eve.dir/analytic/energy.cc.o" "gcc" "src/CMakeFiles/eve.dir/analytic/energy.cc.o.d"
  "/root/repo/src/analytic/taxonomy.cc" "src/CMakeFiles/eve.dir/analytic/taxonomy.cc.o" "gcc" "src/CMakeFiles/eve.dir/analytic/taxonomy.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/eve.dir/common/log.cc.o" "gcc" "src/CMakeFiles/eve.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/eve.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/eve.dir/common/stats.cc.o.d"
  "/root/repo/src/core/engine/eve_engine.cc" "src/CMakeFiles/eve.dir/core/engine/eve_engine.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/engine/eve_engine.cc.o.d"
  "/root/repo/src/core/engine/reconfig.cc" "src/CMakeFiles/eve.dir/core/engine/reconfig.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/engine/reconfig.cc.o.d"
  "/root/repo/src/core/layout/layout.cc" "src/CMakeFiles/eve.dir/core/layout/layout.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/layout/layout.cc.o.d"
  "/root/repo/src/core/sram/bit_array.cc" "src/CMakeFiles/eve.dir/core/sram/bit_array.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/sram/bit_array.cc.o.d"
  "/root/repo/src/core/sram/eve_sram.cc" "src/CMakeFiles/eve.dir/core/sram/eve_sram.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/sram/eve_sram.cc.o.d"
  "/root/repo/src/core/uprog/counters.cc" "src/CMakeFiles/eve.dir/core/uprog/counters.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/uprog/counters.cc.o.d"
  "/root/repo/src/core/uprog/macro_lib.cc" "src/CMakeFiles/eve.dir/core/uprog/macro_lib.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/uprog/macro_lib.cc.o.d"
  "/root/repo/src/core/uprog/sequencer.cc" "src/CMakeFiles/eve.dir/core/uprog/sequencer.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/uprog/sequencer.cc.o.d"
  "/root/repo/src/core/uprog/uop.cc" "src/CMakeFiles/eve.dir/core/uprog/uop.cc.o" "gcc" "src/CMakeFiles/eve.dir/core/uprog/uop.cc.o.d"
  "/root/repo/src/cpu/io_core.cc" "src/CMakeFiles/eve.dir/cpu/io_core.cc.o" "gcc" "src/CMakeFiles/eve.dir/cpu/io_core.cc.o.d"
  "/root/repo/src/cpu/o3_core.cc" "src/CMakeFiles/eve.dir/cpu/o3_core.cc.o" "gcc" "src/CMakeFiles/eve.dir/cpu/o3_core.cc.o.d"
  "/root/repo/src/driver/system.cc" "src/CMakeFiles/eve.dir/driver/system.cc.o" "gcc" "src/CMakeFiles/eve.dir/driver/system.cc.o.d"
  "/root/repo/src/driver/table.cc" "src/CMakeFiles/eve.dir/driver/table.cc.o" "gcc" "src/CMakeFiles/eve.dir/driver/table.cc.o.d"
  "/root/repo/src/isa/functional.cc" "src/CMakeFiles/eve.dir/isa/functional.cc.o" "gcc" "src/CMakeFiles/eve.dir/isa/functional.cc.o.d"
  "/root/repo/src/isa/op.cc" "src/CMakeFiles/eve.dir/isa/op.cc.o" "gcc" "src/CMakeFiles/eve.dir/isa/op.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/eve.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/eve.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/eve.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/eve.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/eve.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/eve.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/eve.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/eve.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/CMakeFiles/eve.dir/sim/resource.cc.o" "gcc" "src/CMakeFiles/eve.dir/sim/resource.cc.o.d"
  "/root/repo/src/vector/dv_engine.cc" "src/CMakeFiles/eve.dir/vector/dv_engine.cc.o" "gcc" "src/CMakeFiles/eve.dir/vector/dv_engine.cc.o.d"
  "/root/repo/src/vector/iv_engine.cc" "src/CMakeFiles/eve.dir/vector/iv_engine.cc.o" "gcc" "src/CMakeFiles/eve.dir/vector/iv_engine.cc.o.d"
  "/root/repo/src/vector/request_gen.cc" "src/CMakeFiles/eve.dir/vector/request_gen.cc.o" "gcc" "src/CMakeFiles/eve.dir/vector/request_gen.cc.o.d"
  "/root/repo/src/workloads/backprop.cc" "src/CMakeFiles/eve.dir/workloads/backprop.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/backprop.cc.o.d"
  "/root/repo/src/workloads/fir.cc" "src/CMakeFiles/eve.dir/workloads/fir.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/fir.cc.o.d"
  "/root/repo/src/workloads/jacobi2d.cc" "src/CMakeFiles/eve.dir/workloads/jacobi2d.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/jacobi2d.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/CMakeFiles/eve.dir/workloads/kmeans.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/kmeans.cc.o.d"
  "/root/repo/src/workloads/mmult.cc" "src/CMakeFiles/eve.dir/workloads/mmult.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/mmult.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/CMakeFiles/eve.dir/workloads/pathfinder.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/pathfinder.cc.o.d"
  "/root/repo/src/workloads/scan.cc" "src/CMakeFiles/eve.dir/workloads/scan.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/scan.cc.o.d"
  "/root/repo/src/workloads/spmv.cc" "src/CMakeFiles/eve.dir/workloads/spmv.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/spmv.cc.o.d"
  "/root/repo/src/workloads/sw.cc" "src/CMakeFiles/eve.dir/workloads/sw.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/sw.cc.o.d"
  "/root/repo/src/workloads/vvadd.cc" "src/CMakeFiles/eve.dir/workloads/vvadd.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/vvadd.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/eve.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/eve.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
