# Empty dependencies file for eve.
# This may be replaced when dependencies are built.
