file(REMOVE_RECURSE
  "libeve.a"
)
