
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytic.cc" "tests/CMakeFiles/unit_tests.dir/test_analytic.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_analytic.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/unit_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/unit_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_cores.cc" "tests/CMakeFiles/unit_tests.dir/test_cores.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cores.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/unit_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/unit_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_eve_sram.cc" "tests/CMakeFiles/unit_tests.dir/test_eve_sram.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_eve_sram.cc.o.d"
  "/root/repo/tests/test_extension_workloads.cc" "tests/CMakeFiles/unit_tests.dir/test_extension_workloads.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_extension_workloads.cc.o.d"
  "/root/repo/tests/test_fault_injection.cc" "tests/CMakeFiles/unit_tests.dir/test_fault_injection.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_fault_injection.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/unit_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_layout.cc" "tests/CMakeFiles/unit_tests.dir/test_layout.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_layout.cc.o.d"
  "/root/repo/tests/test_macro_lib.cc" "tests/CMakeFiles/unit_tests.dir/test_macro_lib.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_macro_lib.cc.o.d"
  "/root/repo/tests/test_misc_coverage.cc" "tests/CMakeFiles/unit_tests.dir/test_misc_coverage.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_misc_coverage.cc.o.d"
  "/root/repo/tests/test_random_programs.cc" "tests/CMakeFiles/unit_tests.dir/test_random_programs.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_random_programs.cc.o.d"
  "/root/repo/tests/test_request_gen.cc" "tests/CMakeFiles/unit_tests.dir/test_request_gen.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_request_gen.cc.o.d"
  "/root/repo/tests/test_resource.cc" "tests/CMakeFiles/unit_tests.dir/test_resource.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_resource.cc.o.d"
  "/root/repo/tests/test_sanity.cc" "tests/CMakeFiles/unit_tests.dir/test_sanity.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_sanity.cc.o.d"
  "/root/repo/tests/test_sew.cc" "tests/CMakeFiles/unit_tests.dir/test_sew.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_sew.cc.o.d"
  "/root/repo/tests/test_systems.cc" "tests/CMakeFiles/unit_tests.dir/test_systems.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_systems.cc.o.d"
  "/root/repo/tests/test_uprog.cc" "tests/CMakeFiles/unit_tests.dir/test_uprog.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_uprog.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/unit_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
