# Empty dependencies file for uop_catalog.
# This may be replaced when dependencies are built.
