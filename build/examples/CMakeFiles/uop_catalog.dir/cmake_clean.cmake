file(REMOVE_RECURSE
  "CMakeFiles/uop_catalog.dir/uop_catalog.cpp.o"
  "CMakeFiles/uop_catalog.dir/uop_catalog.cpp.o.d"
  "uop_catalog"
  "uop_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uop_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
